// Package sim is a small deterministic discrete-event simulation kernel.
//
// The tape-system simulator (package tapesys) is built on three primitives:
//
//   - Engine: a virtual clock plus a time-ordered event queue. Events
//     scheduled for the same instant fire in scheduling order, so runs are
//     fully deterministic.
//   - Resource: a FIFO-queued exclusive resource (the paper's robot arm —
//     one per library — is the canonical user).
//   - Latch: a countdown latch used to detect when the last of a set of
//     parallel activities (all drives serving one request) completes.
//
// The kernel is callback-based rather than goroutine-based: each simulated
// activity schedules its continuation. This keeps a full multi-library
// simulation single-threaded and reproducible; parallelism is applied one
// level up, across independent simulation runs (see internal/experiments).
//
// Continuations are typed: an event carries an Op (a continuation record
// with a jump-table Run method) plus a stage tag, and pooled records
// schedule themselves through ScheduleOp without capturing a closure; plain
// func() callbacks remain first-class through Schedule (see op.go). The
// pending set is a ladder queue — a sorted near-future tier, lazily sorted
// far-future rungs, and a 4-ary heap fallback (see queue.go) — whose pop
// order is the (at, seq) total order, independent of queue shape.
//
// The kernel is also allocation-free in steady state (see
// docs/PERFORMANCE.md): every queue tier reuses its backing array, so
// Schedule/dispatch cost no allocations once the tiers have grown to the
// run's high-water mark.
package sim

import (
	"fmt"
	"math"

	"paralleltape/internal/trace"
)

// Time is a simulated instant in seconds from the start of the run.
type Time = float64

// Engine is the simulation clock and event queue. The zero value is ready
// to use at time 0.
type Engine struct {
	now     Time
	queue   ladderQueue
	seq     uint64
	stepped uint64 // events executed, for diagnostics and runaway guards
	limit   uint64 // optional max events (0 = unlimited)
	rec     trace.Recorder
}

// NewEngine returns an Engine starting at time 0.
func NewEngine() *Engine { return &Engine{} }

// Reset returns the engine to time 0 with an empty queue, retaining the
// queue's backing arrays (and the recorder and event limit) so a sequence of
// runs — e.g. the per-seed loop of one experiment point — reuses the
// high-water-mark allocation instead of regrowing a fresh queue each time.
func (e *Engine) Reset() {
	e.queue.reset()
	e.now = 0
	e.seq = 0
	e.stepped = 0
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.stepped }

// SetEventLimit installs a safety cap on the number of events Run (and
// RunUntil) will execute; exceeding it panics. Zero disables the cap.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// SetRecorder attaches a trace recorder. Components built on the engine
// (Resource, Latch) emit contention events through it; nil (the default)
// disables tracing with zero hot-path cost — every emit site nil-checks
// before constructing an event. The Engine itself emits no per-step
// events: with tens of thousands of callbacks per request, a per-step
// record would dwarf the semantic trace (see docs/OBSERVABILITY.md).
func (e *Engine) SetRecorder(r trace.Recorder) { e.rec = r }

// Recorder returns the attached trace recorder, nil when tracing is off.
func (e *Engine) Recorder() trace.Recorder { return e.rec }

// Schedule runs fn after delay simulated seconds. A negative or NaN delay
// panics: in this simulator a negative latency is always a modelling bug
// and silently clamping it would corrupt causality.
func (e *Engine) Schedule(delay float64, fn func()) {
	if fn == nil {
		panic("sim: Schedule with nil callback")
	}
	e.ScheduleOp(delay, funcOp(fn), 0)
}

// ScheduleOp runs op.Run(tag) after delay simulated seconds. It is the
// typed-continuation form of Schedule: a pooled record schedules itself
// without capturing a closure. Delay validation matches Schedule.
func (e *Engine) ScheduleOp(delay float64, op Op, tag uint8) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v", delay))
	}
	e.at(e.now+delay, op, tag)
}

// At runs fn at absolute time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	e.at(t, funcOp(fn), 0)
}

// AtOp runs op.Run(tag) at absolute time t, which must not be in the past.
func (e *Engine) AtOp(t Time, op Op, tag uint8) {
	if op == nil {
		panic("sim: At with nil callback")
	}
	e.at(t, op, tag)
}

// at is the shared schedule core: validate the instant, assign the next
// sequence number, and file the event. Every public schedule entry point
// funnels here, so seq assignment order — and with it the (at, seq) pop
// order — is identical no matter which API form a caller used.
func (e *Engine) at(t Time, op Op, tag uint8) {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: At(%v) is before now (%v)", t, e.now))
	}
	e.seq++
	e.queue.push(event{at: t, key: e.seq<<8 | uint64(tag), op: op})
}

// Immediately runs fn at the current instant, after all callbacks already
// scheduled for this instant.
func (e *Engine) Immediately(fn func()) { e.Schedule(0, fn) }

// ImmediatelyOp runs op.Run(tag) at the current instant, after all
// callbacks already scheduled for this instant.
func (e *Engine) ImmediatelyOp(op Op, tag uint8) { e.ScheduleOp(0, op, tag) }

// Run executes events in time order until the queue is empty and returns
// the final clock value.
func (e *Engine) Run() Time {
	for e.queue.size > 0 {
		ev := e.queue.pop()
		e.now = ev.at
		e.stepped++
		if e.limit > 0 && e.stepped > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", e.limit, e.now))
		}
		ev.op.Run(ev.tag())
	}
	return e.now
}

// RunUntil executes events whose time is <= deadline, leaves later events
// queued, and advances the clock to min(deadline, last event time). It
// returns true if the queue was drained.
func (e *Engine) RunUntil(deadline Time) bool {
	for e.queue.size > 0 {
		if e.queue.minAt() > deadline {
			e.now = deadline
			return false
		}
		ev := e.queue.pop()
		e.now = ev.at
		e.stepped++
		if e.limit > 0 && e.stepped > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", e.limit, e.now))
		}
		ev.op.Run(ev.tag())
	}
	if e.now < deadline {
		e.now = deadline
	}
	return true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.size }
