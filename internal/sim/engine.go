// Package sim is a small deterministic discrete-event simulation kernel.
//
// The tape-system simulator (package tapesys) is built on three primitives:
//
//   - Engine: a virtual clock plus a time-ordered event queue. Events
//     scheduled for the same instant fire in scheduling order, so runs are
//     fully deterministic.
//   - Resource: a FIFO-queued exclusive resource (the paper's robot arm —
//     one per library — is the canonical user).
//   - Latch: a countdown latch used to detect when the last of a set of
//     parallel activities (all drives serving one request) completes.
//
// The kernel is callback-based rather than goroutine-based: each simulated
// activity schedules its continuation. This keeps a full multi-library
// simulation single-threaded and reproducible; parallelism is applied one
// level up, across independent simulation runs (see internal/experiments).
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"paralleltape/internal/trace"
)

// Time is a simulated instant in seconds from the start of the run.
type Time = float64

// event is one pending callback.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events fire in schedule order
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the simulation clock and event queue. The zero value is ready
// to use at time 0.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stepped uint64 // events executed, for diagnostics and runaway guards
	limit   uint64 // optional max events (0 = unlimited)
	rec     trace.Recorder
}

// NewEngine returns an Engine starting at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.stepped }

// SetEventLimit installs a safety cap on the number of events Run will
// execute; Run panics when it is exceeded. Zero disables the cap.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// SetRecorder attaches a trace recorder. Components built on the engine
// (Resource, Latch) emit contention events through it; nil (the default)
// disables tracing with zero hot-path cost — every emit site nil-checks
// before constructing an event. The Engine itself emits no per-step
// events: with tens of thousands of callbacks per request, a per-step
// record would dwarf the semantic trace (see docs/OBSERVABILITY.md).
func (e *Engine) SetRecorder(r trace.Recorder) { e.rec = r }

// Recorder returns the attached trace recorder, nil when tracing is off.
func (e *Engine) Recorder() trace.Recorder { return e.rec }

// Schedule runs fn after delay simulated seconds. A negative or NaN delay
// panics: in this simulator a negative latency is always a modelling bug
// and silently clamping it would corrupt causality.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: At(%v) is before now (%v)", t, e.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, fn: fn})
}

// Immediately runs fn at the current instant, after all callbacks already
// scheduled for this instant.
func (e *Engine) Immediately(fn func()) { e.Schedule(0, fn) }

// Run executes events in time order until the queue is empty and returns
// the final clock value.
func (e *Engine) Run() Time {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		e.stepped++
		if e.limit > 0 && e.stepped > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", e.limit, e.now))
		}
		ev.fn()
	}
	return e.now
}

// RunUntil executes events whose time is <= deadline, leaves later events
// queued, and advances the clock to min(deadline, last event time). It
// returns true if the queue was drained.
func (e *Engine) RunUntil(deadline Time) bool {
	for len(e.queue) > 0 {
		if e.queue[0].at > deadline {
			e.now = deadline
			return false
		}
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		e.stepped++
		if e.limit > 0 && e.stepped > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", e.limit, e.now))
		}
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
