package sim

// The simulation kernel is the contract every subsystem schedules through
// (docs/ARCHITECTURE.md "Determinism"), so every exported identifier in
// this package must carry a doc comment. This test is the lint backing the
// check.sh / `make check` target, mirroring the ones in internal/trace,
// internal/faults, and internal/spans.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

func TestExportedIdentifiersHaveDocComments(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for fname, file := range pkg.Files {
			if file.Doc == nil && strings.HasSuffix(fname, "engine.go") {
				t.Errorf("%s: package sim has no package-level doc comment", fname)
			}
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						t.Errorf("%s: exported %s %s has no doc comment",
							fset.Position(d.Pos()), declKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(t, fset, d)
				}
			}
		}
	}
}

// declKind labels a FuncDecl as function or method for the error message.
func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// lintGenDecl checks exported names in a var/const/type declaration. A doc
// comment on the enclosing decl covers all specs; otherwise each exported
// spec needs its own.
func lintGenDecl(t *testing.T, fset *token.FileSet, d *ast.GenDecl) {
	t.Helper()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				t.Errorf("%s: exported type %s has no doc comment", fset.Position(s.Pos()), s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				for _, f := range st.Fields.List {
					for _, n := range f.Names {
						if n.IsExported() && f.Doc == nil && f.Comment == nil {
							t.Errorf("%s: exported field %s.%s has no doc comment",
								fset.Position(n.Pos()), s.Name.Name, n.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					t.Errorf("%s: exported %s %s has no doc comment",
						fset.Position(n.Pos()), d.Tok, n.Name)
				}
			}
		}
	}
}
