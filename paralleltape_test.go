package paralleltape

import (
	"math"
	"testing"

	"paralleltape/internal/units"
)

// testWorkload returns a small workload plus shrunken hardware so the
// public-API tests stay fast while still exercising tape switching.
func testSetup(t *testing.T) (Hardware, *Workload) {
	t.Helper()
	hw := DefaultHardware()
	hw.Capacity = 20 * units.GB
	hw.TapesPerLib = 20
	p := DefaultWorkloadParams()
	p.NumObjects = 1500
	p.NumRequests = 30
	p.MinObjSize = 64 * units.MB
	p.MaxObjSize = 1 * units.GB
	p.MinReqLen = 20
	p.MaxReqLen = 40
	w, err := GenerateWorkload(p, 77)
	if err != nil {
		t.Fatal(err)
	}
	return hw, w
}

func TestDefaultHardwarePublic(t *testing.T) {
	hw := DefaultHardware()
	if hw.Libraries != 3 || hw.DrivesPerLib != 8 || hw.TapesPerLib != 80 {
		t.Errorf("unexpected default hardware: %+v", hw)
	}
	if err := hw.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGenerateWorkloadPublic(t *testing.T) {
	_, w := testSetup(t)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.NumObjects() != 1500 || w.NumRequests() != 30 {
		t.Errorf("counts: %d/%d", w.NumObjects(), w.NumRequests())
	}
}

func TestPlaceAndSimulateAllSchemes(t *testing.T) {
	hw, w := testSetup(t)
	schemes := []Scheme{
		NewParallelBatch(2),
		NewObjectProbability(),
		NewClusterProbability(),
		NewRoundRobin(),
	}
	for _, s := range schemes {
		pl, err := Place(hw, s, w)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if pl.TapesUsed <= 0 {
			t.Errorf("%s: TapesUsed = %d", s.Name(), pl.TapesUsed)
		}
		stats, err := Simulate(hw, s, w, 25, 3)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if stats.Requests != 25 || stats.MeanBandwidth <= 0 || stats.MeanResponse <= 0 {
			t.Errorf("%s: degenerate stats %+v", s.Name(), stats)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	hw, w := testSetup(t)
	a, err := Simulate(hw, NewParallelBatch(2), w, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(hw, NewParallelBatch(2), w, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponse != b.MeanResponse || a.MeanBandwidth != b.MeanBandwidth {
		t.Errorf("Simulate not deterministic: %+v vs %+v", a, b)
	}
}

func TestSimulateRejectsBadCount(t *testing.T) {
	hw, w := testSetup(t)
	if _, err := Simulate(hw, NewParallelBatch(2), w, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestTargetMeanRequestBytesPublic(t *testing.T) {
	_, w := testSetup(t)
	target := 5 * float64(units.GB)
	if _, err := TargetMeanRequestBytes(w, target); err != nil {
		t.Fatal(err)
	}
	if got := w.MeanRequestBytes(); math.Abs(got-target)/target > 0.01 {
		t.Errorf("mean request bytes = %v, want %v", got, target)
	}
}

func TestReplaceAlphaPublic(t *testing.T) {
	_, w := testSetup(t)
	flat, err := ReplaceAlpha(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flat.Requests {
		if math.Abs(flat.Requests[i].Prob-1.0/30) > 1e-12 {
			t.Fatalf("alpha=0 prob %v", flat.Requests[i].Prob)
		}
	}
}

func TestClusterObjectsPublic(t *testing.T) {
	_, w := testSetup(t)
	res, err := ClusterObjects(w, DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(w); err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Error("no clusters produced")
	}
}

func TestRunExperimentQuick(t *testing.T) {
	cfg := QuickExperimentConfig()
	cfg.Requests = 15
	rep, err := RunExperiment("fig9", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Errorf("fig9 rows = %d", len(rep.Rows))
	}
	if _, err := RunExperiment("bogus", cfg); err == nil {
		t.Error("bogus experiment accepted")
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatBytes(400 * units.GB); got != "400.00 GB" {
		t.Errorf("FormatBytes = %q", got)
	}
	if got := FormatRate(80e6); got != "80.00 MB/s" {
		t.Errorf("FormatRate = %q", got)
	}
	if got := FormatSeconds(72); got != "1m12.0s" {
		t.Errorf("FormatSeconds = %q", got)
	}
}

func TestSchemeOrderingHolds(t *testing.T) {
	// The paper's headline on the public API: parallel batch beats the two
	// baselines on this mid-skew workload.
	hw, w := testSetup(t)
	pb, err := Simulate(hw, NewParallelBatch(2), w, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Simulate(hw, NewClusterProbability(), w, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pb.MeanBandwidth <= cp.MeanBandwidth {
		t.Errorf("parallel batch (%v) did not beat cluster probability (%v)",
			pb.MeanBandwidth, cp.MeanBandwidth)
	}
}

func TestOnlinePublic(t *testing.T) {
	hw, w := testSetup(t)
	stats, err := Simulate(hw, NewOnline(3, 2), w, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MeanBandwidth <= 0 {
		t.Errorf("degenerate online stats: %+v", stats)
	}
}

func TestStripeWorkloadPublic(t *testing.T) {
	_, w := testSetup(t)
	sw, parent, err := StripeWorkload(w, 128*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if sw.NumObjects() <= w.NumObjects() {
		t.Error("striping produced no shards")
	}
	if len(parent) != sw.NumObjects() {
		t.Errorf("parent mapping sized %d for %d shards", len(parent), sw.NumObjects())
	}
	if sw.TotalObjectBytes() != w.TotalObjectBytes() {
		t.Error("striping changed total bytes")
	}
}

func TestSystemWithOptionsPublic(t *testing.T) {
	hw, w := testSetup(t)
	pl, err := Place(hw, NewParallelBatch(2), w)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemWithOptions(hw, pl, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(&w.Requests[0]); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyticModelPublic(t *testing.T) {
	hw, w := testSetup(t)
	pl, err := Place(hw, NewParallelBatch(2), w)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewAnalyticModel(hw, pl)
	if err != nil {
		t.Fatal(err)
	}
	est, err := mod.EstimateSession(w)
	if err != nil {
		t.Fatal(err)
	}
	if est.Response <= 0 || est.Bandwidth() <= 0 {
		t.Errorf("degenerate estimate: %+v", est)
	}
	if est.Bandwidth() > IdealBandwidth(hw) {
		t.Errorf("estimate %v exceeds hardware ceiling %v", est.Bandwidth(), IdealBandwidth(hw))
	}
}
