// Package paralleltape is a library for studying object placement in
// parallel tape storage systems. It reproduces, as a complete working
// system, the ICPP 2006 paper "Object Placement in Parallel Tape Storage
// Systems" (Zhang, He, Du, Lu — University of Minnesota DISC):
//
//   - a discrete-event simulator of multiple tape libraries (drives, robot
//     arms, linear-motion tape media, per-library FIFO robots);
//   - synthetic workload generation with power-law object sizes and
//     Zipf-distributed request popularity;
//   - hierarchical co-access clustering of objects;
//   - three placement schemes: the paper's parallel batch placement and
//     the two prior baselines it compares against (object probability
//     placement [Christodoulakis et al.] and cluster probability placement
//     [Li & Prabhakar]), plus a naive round-robin extension baseline;
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// # Quick start
//
//	hw := paralleltape.DefaultHardware()
//	w, _ := paralleltape.GenerateWorkload(paralleltape.DefaultWorkloadParams(), 42)
//	stats, _ := paralleltape.Simulate(hw, paralleltape.NewParallelBatch(4), w, 200, 7)
//	fmt.Println(paralleltape.FormatRate(stats.MeanBandwidth))
//
// See the examples/ directory for runnable scenarios and cmd/tapebench for
// the paper-figure harness.
package paralleltape

import (
	"fmt"

	"paralleltape/internal/analytic"
	"paralleltape/internal/catalog"
	"paralleltape/internal/cluster"
	"paralleltape/internal/dist"
	"paralleltape/internal/experiments"
	"paralleltape/internal/faults"
	"paralleltape/internal/metrics"
	"paralleltape/internal/model"
	"paralleltape/internal/placement"
	"paralleltape/internal/rng"
	"paralleltape/internal/tape"
	"paralleltape/internal/tapesys"
	"paralleltape/internal/trace"
	"paralleltape/internal/units"
	"paralleltape/internal/workload"
)

// Core domain types, re-exported from the internal packages.
type (
	// Hardware describes drive/library timing and geometry (Table 1).
	Hardware = tape.Hardware
	// Workload is an object population plus a predefined request set.
	Workload = model.Workload
	// Object is one whole-sequential-access data object.
	Object = model.Object
	// Request is one predefined retrieval request.
	Request = model.Request
	// ObjectID identifies an object within a workload.
	ObjectID = model.ObjectID
	// RequestID identifies a predefined request.
	RequestID = model.RequestID
	// WorkloadParams configures synthetic workload generation (§6).
	WorkloadParams = workload.Params
	// Scheme is a placement algorithm.
	Scheme = placement.Scheme
	// Placement is a finished placement: catalog plus mount policy.
	Placement = placement.Result
	// System is the multi-library discrete-event simulator.
	System = tapesys.System
	// RequestMetrics is the per-request measurement set.
	RequestMetrics = tapesys.RequestMetrics
	// SessionStats aggregates a simulated session (the paper's averages).
	SessionStats = metrics.SessionStats
	// Catalog is the object→cartridge indexing database.
	Catalog = catalog.Catalog
	// TapeKey identifies one cartridge (library, slot).
	TapeKey = tape.Key
	// ClusterConfig tunes the §5.1 co-access clustering.
	ClusterConfig = cluster.Config
	// ClusterResult is a finished clustering.
	ClusterResult = cluster.Result
	// ExperimentConfig scopes the paper-figure harness.
	ExperimentConfig = experiments.Config
	// ExperimentReport is one regenerated table/figure.
	ExperimentReport = experiments.Report
	// SimOptions tunes simulator scheduling (pending order, victim
	// policy), execution (engine shards), and resilience (fault profile,
	// request timeout, retry policy); the zero value is the paper's
	// behavior on a single engine with no faults.
	SimOptions = tapesys.Options
	// FaultProfile configures seed-deterministic fault injection —
	// stochastic drive/robot failures, scripted outages, media errors
	// (docs/RESILIENCE.md). Attach via SimOptions.Faults.
	FaultProfile = faults.Profile
	// DriveOutage scripts one deterministic drive outage window.
	DriveOutage = faults.DriveOutage
	// RobotOutage scripts one deterministic robot-arm outage window.
	RobotOutage = faults.RobotOutage
	// MediaFault scripts one permanent media error at an exact read.
	MediaFault = faults.MediaFault
	// Exponential is an exponential repair/failure-time distribution for
	// fault profiles.
	Exponential = dist.Exponential
	// AnalyticModel derives closed-form response estimates from a
	// placement without simulating.
	AnalyticModel = analytic.Model
	// AnalyticEstimate is one analytic response decomposition.
	AnalyticEstimate = analytic.Estimate
	// TraceEvent is one structured simulator event (docs/OBSERVABILITY.md).
	TraceEvent = trace.Event
	// TraceRecorder receives simulator events; attach with System.SetRecorder.
	TraceRecorder = trace.Recorder
	// TraceBuffer is an in-memory event recorder (System.EnableTrace).
	TraceBuffer = trace.Buffer
	// Timeline is the per-component aggregation of a recorded trace.
	Timeline = metrics.Timeline
)

// BuildTimeline reduces a recorded trace to per-component timelines
// (per-drive busy/idle, per-robot occupancy and queueing); see
// docs/OBSERVABILITY.md for the report format.
func BuildTimeline(events []TraceEvent) *Timeline { return metrics.BuildTimeline(events) }

// Placement scheme constructors.

// NewParallelBatch returns the paper's parallel batch placement (§5) with
// m switch drives per library (the paper's simulations settle on m=4).
func NewParallelBatch(m int) placement.ParallelBatch {
	return placement.ParallelBatch{M: m}
}

// NewObjectProbability returns the [11] object-probability baseline.
func NewObjectProbability() placement.ObjectProbability {
	return placement.ObjectProbability{}
}

// NewClusterProbability returns the [20] cluster-probability baseline.
func NewClusterProbability() placement.ClusterProbability {
	return placement.ClusterProbability{}
}

// NewRoundRobin returns the naive spreading extension baseline.
func NewRoundRobin() placement.RoundRobin {
	return placement.RoundRobin{}
}

// NewOnline returns the online (per-epoch local knowledge) variant of
// parallel batch placement — the paper's §7 future-work problem. epochs=1
// equals full knowledge.
func NewOnline(epochs, m int) placement.Online {
	return placement.Online{Epochs: epochs, M: m}
}

// DefaultHardware returns the paper's Table 1 configuration: three
// StorageTek L80-class libraries of eight IBM LTO-3 drives and eighty
// 400 GB cartridges each.
func DefaultHardware() Hardware { return tape.DefaultHardware() }

// DefaultWorkloadParams returns the paper's §6 workload settings: 30,000
// power-law-sized objects, 300 requests of 100–150 objects, Zipf α = 0.3.
func DefaultWorkloadParams() WorkloadParams { return workload.Defaults() }

// GenerateWorkload synthesizes a workload from params, deterministically
// in seed.
func GenerateWorkload(p WorkloadParams, seed uint64) (*Workload, error) {
	return workload.Generate(p, rng.New(seed))
}

// TargetMeanRequestBytes rescales all object sizes so the
// popularity-weighted mean request size equals target bytes (how the
// paper's request-size axis is produced). It returns the applied factor.
func TargetMeanRequestBytes(w *Workload, target float64) (float64, error) {
	return workload.TargetMeanRequestBytes(w, target)
}

// ReplaceAlpha re-skews request popularities to Zipf(alpha), keeping
// request membership fixed.
func ReplaceAlpha(w *Workload, alpha float64) (*Workload, error) {
	return workload.ReplaceAlpha(w, alpha)
}

// Place runs a placement scheme against hardware and validates the result.
func Place(hw Hardware, s Scheme, w *Workload) (*Placement, error) {
	pr, err := s.Place(w, hw)
	if err != nil {
		return nil, err
	}
	if err := pr.Validate(w, hw); err != nil {
		return nil, err
	}
	return pr, nil
}

// NewSystem builds a simulator in the placement's initial state.
func NewSystem(hw Hardware, pl *Placement) (*System, error) {
	return tapesys.New(hw, pl)
}

// NewSystemWithOptions builds a simulator with explicit scheduling options.
func NewSystemWithOptions(hw Hardware, pl *Placement, opts SimOptions) (*System, error) {
	return tapesys.NewWithOptions(hw, pl, opts)
}

// StripeWorkload splits every object into shards of at most unit bytes and
// expands requests accordingly (RAIT-style striping substrate; place the
// result with NewRoundRobin to emulate striped tape arrays). It returns
// the striped workload and each shard's parent object.
func StripeWorkload(w *Workload, unit int64) (*Workload, []ObjectID, error) {
	return workload.Stripe(w, unit)
}

// Simulate is the end-to-end convenience: place w with s, then submit
// n requests sampled from the workload's popularity distribution
// (deterministically in seed), and return the aggregated session
// statistics. Requests flow through the plan-ahead pipeline
// (System.SubmitStream), which is byte-identical to a plain Submit loop.
func Simulate(hw Hardware, s Scheme, w *Workload, n int, seed uint64) (SessionStats, error) {
	if n <= 0 {
		return SessionStats{}, fmt.Errorf("paralleltape: request count must be positive, got %d", n)
	}
	pl, err := Place(hw, s, w)
	if err != nil {
		return SessionStats{}, err
	}
	sys, err := NewSystem(hw, pl)
	if err != nil {
		return SessionStats{}, err
	}
	defer sys.Close()
	stream, err := workload.NewRequestStream(w, rng.New(seed))
	if err != nil {
		return SessionStats{}, err
	}
	ms := make([]tapesys.RequestMetrics, 0, n)
	i := 0
	err = sys.SubmitStream(
		func() *model.Request {
			if i >= n {
				return nil
			}
			i++
			return stream.Next()
		},
		func(m RequestMetrics) error {
			ms = append(ms, m)
			return nil
		},
	)
	if err != nil {
		return SessionStats{}, err
	}
	return metrics.AggregateSession(ms), nil
}

// AggregateSession reduces per-request metrics to session statistics —
// the paper's averages plus the degraded-mode availability accounting
// (docs/RESILIENCE.md). Simulate calls it internally; use it directly
// when driving a System request by request.
func AggregateSession(ms []RequestMetrics) SessionStats {
	return metrics.AggregateSession(ms)
}

// ClusterObjects runs the §5.1 hierarchical co-access clustering.
func ClusterObjects(w *Workload, cfg ClusterConfig) (*ClusterResult, error) {
	return cluster.Run(w, cfg)
}

// DefaultClusterConfig returns the reproduction's clustering defaults
// (average linkage, workload-relative threshold).
func DefaultClusterConfig() ClusterConfig { return cluster.DefaultConfig() }

// Experiment configuration and dispatch.

// DefaultExperimentConfig returns the full paper-scale experiment setup.
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }

// QuickExperimentConfig returns a reduced-scale setup for fast runs.
func QuickExperimentConfig() ExperimentConfig { return experiments.Quick() }

// RunExperiment regenerates one paper exhibit by id: "table1", "fig5",
// "fig6", "fig7", "fig8", "fig9", "tech", "robustness", or "ablation" —
// or an extension exhibit: "striping", "online", "scheduler",
// "sensitivity", "chaos", or "phases".
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentReport, error) {
	return experiments.ByID(id, cfg)
}

// RunAllExperiments regenerates every exhibit in paper order.
func RunAllExperiments(cfg ExperimentConfig) ([]*ExperimentReport, error) {
	return experiments.All(cfg)
}

// NewAnalyticModel builds a closed-form estimator over a placement; see
// internal/analytic for the assumptions.
func NewAnalyticModel(hw Hardware, pl *Placement) (*AnalyticModel, error) {
	return analytic.NewModel(hw, pl)
}

// IdealBandwidth returns the hardware ceiling (every drive streaming).
func IdealBandwidth(hw Hardware) float64 { return analytic.IdealBandwidth(hw) }

// Formatting helpers.

// FormatBytes renders a byte count with SI units ("400.00 GB").
func FormatBytes(n int64) string { return units.FormatBytesSI(n) }

// FormatRate renders a bandwidth ("80.00 MB/s").
func FormatRate(bytesPerSecond float64) string { return units.FormatRate(bytesPerSecond) }

// FormatSeconds renders a simulated duration ("12m02.0s").
func FormatSeconds(s float64) string { return units.FormatSeconds(s) }
