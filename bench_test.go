package paralleltape

// The bench harness regenerates every exhibit of the paper's evaluation
// section. One benchmark per table/figure:
//
//	go test -bench=. -benchmem                 # reduced (Quick) scale
//	PAPERSCALE=full go test -bench=. -benchmem # full 30k-object scale
//
// Each benchmark executes the whole experiment (every scheme × parameter
// point with the paper's request-stream averaging), prints the regenerated
// table once, and reports the parallel-batch bandwidth at the experiment's
// reference point as a custom metric (MB/s) so runs can be compared
// numerically.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"paralleltape/internal/cluster"
	"paralleltape/internal/loadbalance"
	"paralleltape/internal/organpipe"
	"paralleltape/internal/units"
)

// benchCfg selects the experiment scale: Quick by default, the paper's
// full scale when PAPERSCALE=full.
func benchCfg() ExperimentConfig {
	if os.Getenv("PAPERSCALE") == "full" {
		return DefaultExperimentConfig()
	}
	return QuickExperimentConfig()
}

var benchPrintOnce sync.Map

// runExhibit executes experiment id b.N times, rendering its table on the
// first execution per process and reporting the parallel-batch reference
// bandwidth.
func runExhibit(b *testing.B, id string) {
	b.Helper()
	cfg := benchCfg()
	var rep *ExperimentReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = RunExperiment(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			b.Fatal(err)
		}
	}
	if _, printed := benchPrintOnce.LoadOrStore(id, true); !printed {
		fmt.Println()
		if err := rep.Table.Render(os.Stdout); err != nil {
			b.Fatal(err)
		}
	}
	// Reference metric: mean parallel-batch bandwidth over the exhibit's
	// rows (table1 has no rows).
	var sum float64
	var n int
	for _, r := range rep.Rows {
		if r.Scheme == "parallel-batch" && r.Err == nil {
			sum += r.Stats.MeanBandwidth
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n)/1e6, "PB-MB/s")
	}
}

// BenchmarkTable1 regenerates Table 1 (drive/library specifications).
func BenchmarkTable1(b *testing.B) { runExhibit(b, "table1") }

// BenchmarkFig5SwitchDrives regenerates Figure 5: bandwidth vs. the number
// of switch drives m for several Zipf α values.
func BenchmarkFig5SwitchDrives(b *testing.B) { runExhibit(b, "fig5") }

// BenchmarkFig6Alpha regenerates Figure 6: bandwidth vs. α for the three
// schemes at ≈213 GB mean request size.
func BenchmarkFig6Alpha(b *testing.B) { runExhibit(b, "fig6") }

// BenchmarkFig7RequestSize regenerates Figure 7: bandwidth vs. average
// request size, including the all-mounted extreme case.
func BenchmarkFig7RequestSize(b *testing.B) { runExhibit(b, "fig7") }

// BenchmarkFig8Libraries regenerates Figure 8: bandwidth vs. the number of
// tape libraries at ≈240 GB mean request size.
func BenchmarkFig8Libraries(b *testing.B) { runExhibit(b, "fig8") }

// BenchmarkFig9Components regenerates Figure 9: the switch/seek/transfer
// decomposition of response time at ≈160 GB mean request size.
func BenchmarkFig9Components(b *testing.B) { runExhibit(b, "fig9") }

// BenchmarkTechScaling regenerates the §6 closing remark: scheme behavior
// under improved drive/cartridge technology.
func BenchmarkTechScaling(b *testing.B) { runExhibit(b, "tech") }

// BenchmarkRobustness regenerates the §6 robustness remark: the scheme
// ordering under workload variations.
func BenchmarkRobustness(b *testing.B) { runExhibit(b, "robustness") }

// BenchmarkAblation quantifies the parallel-batch design choices
// (clustering, organ-pipe alignment, zigzag balancing, cluster splitting,
// hot-batch width) by disabling one at a time.
func BenchmarkAblation(b *testing.B) { runExhibit(b, "ablation") }

// BenchmarkStriping regenerates the §2 striping comparison: parallel batch
// vs. RAIT-style striped placement at several stripe units.
func BenchmarkStriping(b *testing.B) { runExhibit(b, "striping") }

// BenchmarkOnline regenerates the §7 future-work study: per-epoch local
// knowledge vs. full-knowledge placement.
func BenchmarkOnline(b *testing.B) { runExhibit(b, "online") }

// BenchmarkScheduler sweeps simulator scheduling policies (pending-queue
// order × victim selection).
func BenchmarkScheduler(b *testing.B) { runExhibit(b, "scheduler") }

// BenchmarkSensitivity sweeps the §5.1 clustering knobs (linkage,
// threshold) on the parallel batch placement.
func BenchmarkSensitivity(b *testing.B) { runExhibit(b, "sensitivity") }

// BenchmarkPlacementParallelBatch measures raw placement cost (clustering
// + sublists + balancing + alignment) at the configured scale.
func BenchmarkPlacementParallelBatch(b *testing.B) {
	cfg := benchCfg()
	w, err := GenerateWorkload(benchParams(cfg), cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	hw := cfg.HW
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Place(hw, NewParallelBatch(cfg.M), w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacementCluster isolates the §5.1 clustering stage (atoms,
// similarity edges, agglomeration) of the placement pipeline at the
// configured scale; the -json document tracks it as placement-cluster.
func BenchmarkPlacementCluster(b *testing.B) {
	cfg := benchCfg()
	w, err := GenerateWorkload(benchParams(cfg), cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(w, cluster.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacementOrganPipe isolates the §5.3 step 6 alignment stage:
// organ-piping one tape-sized item list; tracked as placement-organpipe.
func BenchmarkPlacementOrganPipe(b *testing.B) {
	cfg := benchCfg()
	w, err := GenerateWorkload(benchParams(cfg), cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	probs := w.ObjectProbs()
	items := make([]organpipe.Item, 512)
	for i := range items {
		items[i] = organpipe.Item{Index: i, Weight: probs[i%len(probs)]}
	}
	var arr organpipe.Arranger
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr.Arrange(items)
	}
}

// BenchmarkPlacementLoadBalance isolates the §5.4 balancing stage: zigzag
// of one cluster-sized item list across a tape batch; tracked as
// placement-loadbalance.
func BenchmarkPlacementLoadBalance(b *testing.B) {
	cfg := benchCfg()
	w, err := GenerateWorkload(benchParams(cfg), cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	probs := w.ObjectProbs()
	items := make([]loadbalance.Item, 64)
	for i := range items {
		size := int64(i%7+1) * units.MB
		items[i] = loadbalance.Item{Load: probs[i%len(probs)] * float64(size), Size: size}
	}
	states := make([]loadbalance.TapeState, 8)
	ptrs := make([]*loadbalance.TapeState, len(states))
	for i := range states {
		ptrs[i] = &states[i]
	}
	var p loadbalance.Packer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range states {
			states[j] = loadbalance.TapeState{Free: 1 << 40}
		}
		if _, err := p.Zigzag(items, ptrs, len(states)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateRequest measures per-request simulation cost on a
// parallel-batch placement.
func BenchmarkSimulateRequest(b *testing.B) {
	cfg := benchCfg()
	w, err := GenerateWorkload(benchParams(cfg), cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	hw := cfg.HW
	pl, err := Place(hw, NewParallelBatch(cfg.M), w)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(hw, pl)
	if err != nil {
		b.Fatal(err)
	}
	reqs := w.Requests
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Submit(&reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRun measures the simulation hot path with tracing disabled —
// the default configuration. Its allocs/op must not regress when
// observability hooks are added: with no recorder attached, every emit
// site is a nil check and nothing more.
func BenchmarkRun(b *testing.B) { benchSubmit(b, false) }

// BenchmarkRunTraced measures the same path with an in-memory trace
// buffer attached, bounding the cost of enabling observability.
func BenchmarkRunTraced(b *testing.B) { benchSubmit(b, true) }

// BenchmarkRunSharded measures per-request simulation cost with the
// system's libraries partitioned across engine shards. shards=1 bounds
// the dispatch overhead of the sharded data layout against BenchmarkRun;
// higher counts add the fork/join cost, which parallel hardware trades
// for intra-request concurrency (see docs/PERFORMANCE.md "Shard
// scaling"). Results are byte-identical across all variants.
func BenchmarkRunSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchSubmitSharded(b, false, shards)
		})
	}
}

// BenchmarkSweepSharded runs the fig6 sweep with sharded systems — the
// end-to-end shape where intra-run sharding compounds with the run-level
// worker pool.
func BenchmarkSweepSharded(b *testing.B) {
	cfg := benchCfg()
	cfg.Shards = 2
	for i := 0; i < b.N; i++ {
		rep, err := RunExperiment("fig6", cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSubmit(b *testing.B, traced bool) {
	b.Helper()
	benchSubmitSharded(b, traced, 0)
}

func benchSubmitSharded(b *testing.B, traced bool, shards int) {
	b.Helper()
	cfg := benchCfg()
	w, err := GenerateWorkload(benchParams(cfg), cfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	hw := cfg.HW
	pl, err := Place(hw, NewParallelBatch(cfg.M), w)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystemWithOptions(hw, pl, SimOptions{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	var buf *TraceBuffer
	if traced {
		buf = sys.EnableTrace(0)
	}
	reqs := w.Requests
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Submit(&reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
		if traced {
			buf.Reset() // keep memory flat; recording cost still measured
		}
	}
}

// benchParams mirrors the experiment harness's scaled workload parameters:
// object population and request lengths scale, the predefined request
// count stays at the paper's 300, and the object-size tail is capped
// relative to the (possibly shrunken) cartridge.
func benchParams(cfg ExperimentConfig) WorkloadParams {
	p := DefaultWorkloadParams()
	p.NumObjects = int(float64(p.NumObjects) * cfg.Scale)
	if p.NumObjects < 200 {
		p.NumObjects = 200
	}
	if cfg.Scale != 1 {
		p.MinReqLen = int(float64(p.MinReqLen) * cfg.Scale)
		if p.MinReqLen < 2 {
			p.MinReqLen = 2
		}
		p.MaxReqLen = int(float64(p.MaxReqLen) * cfg.Scale)
		if p.MaxReqLen < p.MinReqLen {
			p.MaxReqLen = p.MinReqLen
		}
		if cap40 := cfg.HW.Capacity / 40; p.MaxObjSize > cap40 {
			p.MaxObjSize = cap40
		}
	}
	return p
}
