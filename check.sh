#!/bin/sh
# check.sh — the repository's verification gate (same steps as `make check`):
# build everything, vet everything, run the full test suite under the race
# detector, and run the trace-schema doc lint (every exported identifier in
# internal/trace must carry a doc comment; see internal/trace/doclint_test.go).
set -eu

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== doc lint (internal/trace exported identifiers)"
go test ./internal/trace -run TestExportedIdentifiersHaveDocComments -count=1

echo "check: OK"
