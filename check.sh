#!/bin/sh
# check.sh — the repository's verification gate (same steps as `make check`):
# build everything, vet everything, run the full test suite under the race
# detector, and run the doc lints (every exported identifier in
# internal/trace, internal/faults, internal/spans, and the internal/sim
# kernel must carry a doc comment, plus a package-level comment; see the
# doclint_test.go in each package).
set -eu

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== doc lint (internal/trace + internal/faults + internal/spans + internal/sim exported identifiers)"
go test ./internal/trace ./internal/faults ./internal/spans ./internal/sim -run TestExportedIdentifiersHaveDocComments -count=1

echo "check: OK"
