// HPC checkpoint restore (the paper's §1 motivation): a computing cluster
// periodically migrates inactive users' checkpoint data to tape; when a
// user's time slot returns, the whole checkpoint set must be restored as
// fast as possible.
//
// This example models 40 users, each owning a series of checkpoint files,
// where "restore user u" is one request retrieving every file of that
// user's latest checkpoint. Recently active users are more likely to
// return (Zipf over users). It compares the three placement schemes on
// mean restore time.
//
//	go run ./examples/hpcrestore
package main

import (
	"fmt"
	"log"
	"math/rand"

	"paralleltape"
)

const (
	numUsers      = 80
	filesPerCkpt  = 80        // checkpoint shards per user
	shardMin      = 256 << 20 // 256 MiB
	shardMax      = 4 << 30   // 4 GiB
	restoreEvents = 120
)

func main() {
	// Build the workload by hand through the public model types: each
	// user's checkpoint shards are one request.
	src := rand.New(rand.NewSource(2026))
	var w paralleltape.Workload
	var nextID paralleltape.ObjectID
	zipfNorm := 0.0
	for u := 1; u <= numUsers; u++ {
		zipfNorm += 1 / float64(u)
	}
	for u := 0; u < numUsers; u++ {
		var ids []paralleltape.ObjectID
		for f := 0; f < filesPerCkpt; f++ {
			size := shardMin + src.Int63n(shardMax-shardMin)
			w.Objects = append(w.Objects, paralleltape.Object{ID: nextID, Size: size})
			ids = append(ids, nextID)
			nextID++
		}
		w.Requests = append(w.Requests, paralleltape.Request{
			ID:      paralleltape.RequestID(u),
			Prob:    1 / float64(u+1) / zipfNorm, // recent users return more often
			Objects: ids,
		})
	}
	if err := w.Validate(); err != nil {
		log.Fatal(err)
	}

	// A modest two-library installation.
	hw := paralleltape.DefaultHardware()
	hw.Libraries = 2
	hw.TapesPerLib = 60

	fmt.Printf("checkpoint archive: %d users × %d shards, %s total\n",
		numUsers, filesPerCkpt, paralleltape.FormatBytes(w.TotalObjectBytes()))
	fmt.Printf("system: %d libraries × %d drives × %d tapes\n\n",
		hw.Libraries, hw.DrivesPerLib, hw.TapesPerLib)

	schemes := []paralleltape.Scheme{
		paralleltape.NewObjectProbability(),
		paralleltape.NewClusterProbability(),
		paralleltape.NewParallelBatch(4),
	}
	fmt.Printf("%-22s %14s %14s %12s\n", "scheme", "mean restore", "p95 restore", "bandwidth")
	for _, s := range schemes {
		stats, err := paralleltape.Simulate(hw, s, &w, restoreEvents, 99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %14s %14s %12s\n", s.Name(),
			paralleltape.FormatSeconds(stats.MeanResponse),
			paralleltape.FormatSeconds(stats.Response.P95),
			paralleltape.FormatRate(stats.MeanBandwidth))
	}
	fmt.Println("\nA user's checkpoint shards are always co-accessed, so the")
	fmt.Println("relationship-aware schemes restore dramatically faster than")
	fmt.Println("probability-only placement.")
}
