// Streaming submission: drive a sharded system through the plan-ahead
// pipeline (System.SubmitStream) and show the determinism contract —
// pipelined, overlapped execution produces exactly the same metrics as
// a plain Submit loop. Also demonstrates the System lifecycle: a system
// with Shards > 1 owns persistent worker goroutines, released by Close.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"paralleltape"
)

func main() {
	hw := paralleltape.DefaultHardware()
	params := paralleltape.DefaultWorkloadParams()
	w, err := paralleltape.GenerateWorkload(params, 42)
	if err != nil {
		log.Fatal(err)
	}
	scheme := paralleltape.NewParallelBatch(4)
	pl, err := paralleltape.Place(hw, scheme, w)
	if err != nil {
		log.Fatal(err)
	}

	// A sharded system runs each request's per-library event chains on
	// persistent shard executors. Close releases them; a system that is
	// merely dropped is reclaimed by a GC cleanup, but explicit Close is
	// the documented lifecycle.
	sys, err := paralleltape.NewSystemWithOptions(hw, pl, paralleltape.SimOptions{Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// SubmitStream pulls requests from next until it returns nil and
	// hands each result to the callback. While request k's tape events
	// simulate, request k+1 is already being grouped and read-planned on
	// the pipeline goroutine — wall-clock overlap, identical results.
	reqs := w.Requests
	streamed := make([]paralleltape.RequestMetrics, 0, len(reqs))
	i := 0
	err = sys.SubmitStream(
		func() *paralleltape.Request {
			if i >= len(reqs) {
				return nil
			}
			r := &reqs[i]
			i++
			return r
		},
		func(m paralleltape.RequestMetrics) error {
			streamed = append(streamed, m)
			return nil
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	stats := paralleltape.AggregateSession(streamed)

	// The same requests through a plain Submit loop on a fresh system:
	// the determinism contract says every number matches exactly.
	plain, err := paralleltape.NewSystemWithOptions(hw, pl, paralleltape.SimOptions{Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer plain.Close()
	looped := make([]paralleltape.RequestMetrics, 0, len(reqs))
	for j := range reqs {
		m, err := plain.Submit(&reqs[j])
		if err != nil {
			log.Fatal(err)
		}
		looped = append(looped, m)
	}
	plainStats := paralleltape.AggregateSession(looped)

	fmt.Printf("requests streamed:   %d (%s transferred)\n",
		stats.Requests, paralleltape.FormatBytes(stats.Bytes))
	fmt.Printf("effective bandwidth: %s\n", paralleltape.FormatRate(stats.MeanBandwidth))
	fmt.Printf("avg response:        %s\n", paralleltape.FormatSeconds(stats.MeanResponse))
	fmt.Printf("pipeline == plain loop: %v\n", stats == plainStats)
	if stats != plainStats {
		log.Fatal("determinism contract violated: pipelined stats diverge")
	}
}
