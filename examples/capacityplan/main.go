// Capacity planning: an operator sizing a new parallel tape installation
// wants to know (1) how many switch drives per library to dedicate (the
// paper's m parameter, Figure 5) and (2) whether money is better spent on
// another library (Figure 8). This example sweeps both knobs with the
// parallel batch placement and prints a planning matrix.
//
//	go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"

	"paralleltape"
)

func main() {
	params := paralleltape.DefaultWorkloadParams()
	params.NumObjects = 3000
	params.NumRequests = 60
	params.MinReqLen = 30
	params.MaxReqLen = 50
	w, err := paralleltape.GenerateWorkload(params, 123)
	if err != nil {
		log.Fatal(err)
	}
	// Shrink cartridges so the workload exercises tape switching even on
	// the smallest candidate installation (see the library's Quick config
	// rationale).
	baseHW := paralleltape.DefaultHardware()
	baseHW.Capacity = 80e9 // 80 GB cartridges keep switching in play at this scale

	fmt.Printf("planning workload: %d objects, %s total, mean request %s\n\n",
		w.NumObjects(), paralleltape.FormatBytes(w.TotalObjectBytes()),
		paralleltape.FormatBytes(int64(w.MeanRequestBytes())))

	fmt.Println("switch drives per library (3 libraries):")
	fmt.Printf("  %-4s %14s %16s\n", "m", "bandwidth", "mean response")
	for m := 1; m <= baseHW.DrivesPerLib-1; m++ {
		stats, err := paralleltape.Simulate(baseHW, paralleltape.NewParallelBatch(m), w, 40, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4d %14s %16s\n", m,
			paralleltape.FormatRate(stats.MeanBandwidth),
			paralleltape.FormatSeconds(stats.MeanResponse))
	}

	fmt.Println("\nlibrary count (m = 4):")
	fmt.Printf("  %-10s %14s %16s\n", "libraries", "bandwidth", "mean response")
	for libs := 1; libs <= 4; libs++ {
		hw := baseHW
		hw.Libraries = libs
		stats, err := paralleltape.Simulate(hw, paralleltape.NewParallelBatch(4), w, 40, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10d %14s %16s\n", libs,
			paralleltape.FormatRate(stats.MeanBandwidth),
			paralleltape.FormatSeconds(stats.MeanResponse))
	}
	fmt.Println("\nRead the two tables together: adding switch drives tightens the")
	fmt.Println("switch path inside each library, while adding libraries multiplies")
	fmt.Println("robots and drives — the paper's Figures 5 and 8 in planning form.")
}
