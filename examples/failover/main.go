// Degraded operations: tape drives fail in the field, and an operator
// wants to know how a day of restores degrades as hardware drops out —
// how much payload still arrives on time, how much recovery work the
// surviving drives absorb, and whether anything is lost outright.
//
// This example runs one parallel-batch system through 60 restores with
// stochastic fault injection active (drive and robot failures, media
// errors — see docs/RESILIENCE.md) and a per-request deadline. Midway it
// also kills a drive permanently with the manual FailDrive API: unlike
// injected failures, manual ones are never repaired, and the system
// degrades to partial results instead of erroring. The output is the
// phase-by-phase trend plus the session's availability accounting.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"paralleltape"
)

func main() {
	hw := paralleltape.DefaultHardware()
	hw.Libraries = 2
	hw.DrivesPerLib = 4
	hw.TapesPerLib = 60
	hw.Capacity = 100e9 // 100 GB cartridges keep switching in play

	params := paralleltape.DefaultWorkloadParams()
	params.NumObjects = 4000
	params.NumRequests = 60
	params.MinReqLen = 20
	params.MaxReqLen = 40
	w, err := paralleltape.GenerateWorkload(params, 31)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := paralleltape.TargetMeanRequestBytes(w, 60e9); err != nil {
		log.Fatal(err)
	}

	pl, err := paralleltape.Place(hw, paralleltape.NewParallelBatch(2), w)
	if err != nil {
		log.Fatal(err)
	}

	// The fault profile is the whole resilience configuration: drives
	// fail about every two simulated hours and take ~15 minutes to
	// repair, the robots are an order of magnitude more reliable, and
	// one read in a thousand hits a permanent media error. Every draw
	// derives from Seed, so this run is exactly reproducible.
	sys, err := paralleltape.NewSystemWithOptions(hw, pl, paralleltape.SimOptions{
		Faults: &paralleltape.FaultProfile{
			Seed:              7,
			DriveMTBF:         7200,
			DriveRepair:       paralleltape.Exponential{Mean: 900},
			RobotMTBF:         72000,
			RobotRepair:       paralleltape.Exponential{Mean: 300},
			MediaErrorPerRead: 0.001,
		},
		RequestTimeout: 3600, // an hour per restore, then the client gives up
		RetryBackoff:   30,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("restore workload: %d objects, %s total; %d drives across %d libraries\n",
		w.NumObjects(), paralleltape.FormatBytes(w.TotalObjectBytes()),
		hw.DrivesPerLib*hw.Libraries, hw.Libraries)
	fmt.Printf("faults: drive MTBF 2h (repair ~15m), robot MTBF 20h, media error 1e-3/read, 1h deadline\n\n")
	fmt.Printf("%-9s %6s %14s %12s %8s %9s %6s\n",
		"restores", "failed", "mean response", "goodput", "avail%", "retries", "late")

	var phase []paralleltape.RequestMetrics
	flush := func(lo, hi int) {
		st := paralleltape.AggregateSession(phase)
		fmt.Printf("%3d..%-5d %6d %14s %12s %8.2f %9.2f %6d\n",
			lo, hi, sys.FailedDrives(),
			paralleltape.FormatSeconds(st.MeanResponse),
			paralleltape.FormatRate(st.MeanGoodput),
			100*st.Availability, st.MeanRetries, st.TimedOut)
		phase = phase[:0]
	}

	var all []paralleltape.RequestMetrics
	for i := 0; i < 60; i++ {
		if i == 30 {
			// A drive controller burns out for good: the manual failure
			// API is permanent (no auto-repair) and legal mid-stream —
			// its pinned cartridge goes back to a cell and the restore
			// load shifts onto the survivors.
			flush(i-15, i-1)
			if err := sys.FailDrive(0, 0); err != nil {
				log.Fatal(err)
			}
			fmt.Println("  !! drive L0.D0 failed permanently (manual FailDrive)")
		} else if i > 0 && i%15 == 0 {
			flush(i-15, i-1)
		}
		m, err := sys.Submit(&w.Requests[(5+i*7)%len(w.Requests)])
		if err != nil {
			log.Fatal(err)
		}
		phase = append(phase, m)
		all = append(all, m)
	}
	flush(45, 59)

	st := paralleltape.AggregateSession(all)
	fmt.Printf("\nsession: %s of %s delivered on time (availability %.2f%%)\n",
		paralleltape.FormatBytes(st.BytesServed), paralleltape.FormatBytes(st.Bytes),
		100*st.Availability)
	fmt.Printf("         %d restores missed the 1h deadline; %d tape groups abandoned "+
		"(%d media errors); %.2f retries/restore\n",
		st.TimedOut, st.FailedGroups, st.MediaErrors, st.MeanRetries)
	fmt.Println("\nEvery restore still completes — interrupted reads are retried on")
	fmt.Println("surviving drives and dead hardware degrades service to partial")
	fmt.Println("results instead of errors. docs/RESILIENCE.md documents the model.")
}
