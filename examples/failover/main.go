// Degraded operations: tape drives fail in the field, and an operator
// wants to know how restore times degrade as drives drop out — and whether
// the placement still functions at all (the always-mounted batch loses its
// pins when its drives die).
//
// This example runs one parallel-batch system through a day of restores
// while drives fail one by one, printing the response-time trend and the
// final drive/robot utilization table.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"os"

	"paralleltape"
)

func main() {
	hw := paralleltape.DefaultHardware()
	hw.Libraries = 2
	hw.DrivesPerLib = 4
	hw.TapesPerLib = 60
	hw.Capacity = 100e9 // 100 GB cartridges keep switching in play

	params := paralleltape.DefaultWorkloadParams()
	params.NumObjects = 4000
	params.NumRequests = 60
	params.MinReqLen = 20
	params.MaxReqLen = 40
	w, err := paralleltape.GenerateWorkload(params, 31)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := paralleltape.TargetMeanRequestBytes(w, 60e9); err != nil {
		log.Fatal(err)
	}

	pl, err := paralleltape.Place(hw, paralleltape.NewParallelBatch(2), w)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := paralleltape.NewSystem(hw, pl)
	if err != nil {
		log.Fatal(err)
	}

	// Drives fail after every 15 restores: first a switch drive, then a
	// pinned drive (whose always-mounted tape goes back to its cell), then
	// another switch drive in the second library.
	failures := map[int][2]int{15: {0, 3}, 30: {0, 0}, 45: {1, 2}}

	fmt.Printf("restore workload: %d objects, %s total; %d drives across %d libraries\n\n",
		w.NumObjects(), paralleltape.FormatBytes(w.TotalObjectBytes()),
		hw.DrivesPerLib*hw.Libraries, hw.Libraries)
	fmt.Printf("%-10s %8s %16s %14s\n", "phase", "failed", "mean response", "bandwidth")

	var sum float64
	var bytes int64
	count := 0
	phaseStart := 0
	flush := func(i int) {
		if count == 0 {
			return
		}
		mean := sum / float64(count)
		bw := float64(bytes) / sum
		fmt.Printf("%3d..%-5d %8d %16s %14s\n", phaseStart, i-1, sys.FailedDrives(),
			paralleltape.FormatSeconds(mean), paralleltape.FormatRate(bw))
		sum, bytes, count, phaseStart = 0, 0, 0, i
	}

	seedStream := uint64(5)
	streamW := w // deterministic request order
	reqIdx := func(i int) *paralleltape.Request {
		// Rotate deterministically through requests, weighted sampling not
		// needed for a failure drill.
		return &streamW.Requests[int(seedStream+uint64(i*7))%len(streamW.Requests)]
	}

	for i := 0; i < 60; i++ {
		if f, ok := failures[i]; ok {
			flush(i)
			if err := sys.FailDrive(f[0], f[1]); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  !! drive L%d.D%d failed\n", f[0], f[1])
		}
		m, err := sys.Submit(reqIdx(i))
		if err != nil {
			log.Fatal(err)
		}
		sum += m.Response
		bytes += m.Bytes
		count++
	}
	flush(60)

	fmt.Println()
	if err := sys.WriteUtilization(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEvery restore still completes — failed pinned drives lose their")
	fmt.Println("always-mounted status and their tapes flow through the surviving")
	fmt.Println("switch path — at the cost of the response-time degradation above.")
}
