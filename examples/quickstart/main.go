// Quickstart: generate a paper-scale workload, place it with the paper's
// parallel batch placement, simulate 50 restore requests, and print the
// session metrics. Everything is deterministic in the seeds, so this
// program prints the same numbers on every run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"paralleltape"
)

func main() {
	// The paper's hardware: 3 libraries × 8 LTO-3 drives × 80 cartridges.
	hw := paralleltape.DefaultHardware()

	// The paper's workload: 30,000 power-law objects, 300 Zipf requests.
	params := paralleltape.DefaultWorkloadParams()
	w, err := paralleltape.GenerateWorkload(params, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d objects, %d requests, %s total\n",
		w.NumObjects(), w.NumRequests(), paralleltape.FormatBytes(w.TotalObjectBytes()))

	// Parallel batch placement with the paper's m = 4 switch drives.
	scheme := paralleltape.NewParallelBatch(4)
	stats, err := paralleltape.Simulate(hw, scheme, w, 50, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheme:   %s\n", scheme.Name())
	fmt.Printf("requests: %d  (%s transferred)\n", stats.Requests, paralleltape.FormatBytes(stats.Bytes))
	fmt.Printf("effective bandwidth: %s\n", paralleltape.FormatRate(stats.MeanBandwidth))
	fmt.Printf("avg response:        %s\n", paralleltape.FormatSeconds(stats.MeanResponse))
	fmt.Printf("  switch component:  %s\n", paralleltape.FormatSeconds(stats.MeanSwitch))
	fmt.Printf("  seek component:    %s\n", paralleltape.FormatSeconds(stats.MeanSeek))
	fmt.Printf("  transfer component:%s\n", paralleltape.FormatSeconds(stats.MeanTransfer))
}
