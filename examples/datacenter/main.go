// Enterprise data center disaster recovery (the paper's §1 motivation):
// nightly backups of many application volumes are archived to tape; a
// restore event pulls back every volume of one application tier. Restore
// time is money, so the operator compares placement schemes — and studies
// how the restore SLA changes when a second and third tape library are
// added.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"

	"paralleltape"
)

// A tier bundles the volumes restored together after an outage. Weights
// reflect how often each tier's restore is rehearsed or needed.
type tier struct {
	name    string
	volumes int
	volMin  int64
	volMax  int64
	weight  float64
}

func main() {
	tiers := []tier{
		{"oltp-databases", 24, 8 << 30, 32 << 30, 5},
		{"mail-platform", 40, 2 << 30, 8 << 30, 3},
		{"file-shares", 80, 1 << 30, 4 << 30, 2},
		{"analytics-warehouse", 16, 16 << 30, 64 << 30, 1.5},
		{"vm-images", 60, 4 << 30, 12 << 30, 1},
		{"archive-cold", 120, 512 << 20, 2 << 30, 0.5},
	}

	src := rand.New(rand.NewSource(7))
	var w paralleltape.Workload
	var next paralleltape.ObjectID
	totalWeight := 0.0
	for _, t := range tiers {
		totalWeight += t.weight
	}
	for ti, t := range tiers {
		var ids []paralleltape.ObjectID
		for v := 0; v < t.volumes; v++ {
			size := t.volMin + src.Int63n(t.volMax-t.volMin)
			w.Objects = append(w.Objects, paralleltape.Object{ID: next, Size: size})
			ids = append(ids, next)
			next++
		}
		w.Requests = append(w.Requests, paralleltape.Request{
			ID:      paralleltape.RequestID(ti),
			Prob:    t.weight / totalWeight,
			Objects: ids,
		})
	}
	if err := w.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backup estate: %d volumes across %d tiers, %s archived\n\n",
		w.NumObjects(), len(tiers), paralleltape.FormatBytes(w.TotalObjectBytes()))

	schemes := []paralleltape.Scheme{
		paralleltape.NewClusterProbability(),
		paralleltape.NewParallelBatch(2),
	}
	fmt.Printf("%-12s %-22s %14s %14s\n", "libraries", "scheme", "mean restore", "bandwidth")
	for libs := 1; libs <= 3; libs++ {
		hw := paralleltape.DefaultHardware()
		hw.Libraries = libs
		hw.TapesPerLib = 24
		hw.DrivesPerLib = 4
		for _, s := range schemes {
			stats, err := paralleltape.Simulate(hw, s, &w, 80, 11)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12d %-22s %14s %14s\n", libs, s.Name(),
				paralleltape.FormatSeconds(stats.MeanResponse),
				paralleltape.FormatRate(stats.MeanBandwidth))
		}
	}
	fmt.Println("\nParallel batch placement converts added libraries into restore")
	fmt.Println("bandwidth; cluster-per-tape placement cannot, because a tier's")
	fmt.Println("volumes stream from a single drive regardless of library count.")
}
